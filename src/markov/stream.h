#ifndef CALDERA_MARKOV_STREAM_H_
#define CALDERA_MARKOV_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "markov/cpt.h"
#include "markov/distribution.h"
#include "markov/schema.h"

namespace caldera {

/// An in-memory Markovian stream (Section 2.1): a schema, a marginal
/// distribution per timestep, and a CPT per transition. Following the paper
/// Caldera materializes *every* marginal (not just p_0) alongside the CPTs.
///
/// Indexing convention: `transition(t)` is the CPT *into* timestep t, i.e.
/// C(X_t | X_{t-1}); it is defined for t in [1, length). This matches the
/// paper's `t.cpt` notation in Algorithms 1-5.
class MarkovianStream {
 public:
  MarkovianStream() = default;
  explicit MarkovianStream(StreamSchema schema) : schema_(std::move(schema)) {}

  /// Appends a timestep. The first call may omit `transition` (pass an empty
  /// Cpt); later calls must supply the CPT from the previous timestep.
  void Append(Distribution marginal, Cpt transition);

  uint64_t length() const { return marginals_.size(); }
  bool empty() const { return marginals_.empty(); }

  const StreamSchema& schema() const { return schema_; }
  StreamSchema* mutable_schema() { return &schema_; }

  const Distribution& marginal(uint64_t t) const { return marginals_[t]; }
  const Cpt& transition(uint64_t t) const { return transitions_[t]; }

  Distribution* mutable_marginal(uint64_t t) { return &marginals_[t]; }
  Cpt* mutable_transition(uint64_t t) { return &transitions_[t]; }

  /// Validates the stream's Markovian invariants:
  ///   * every marginal is normalized,
  ///   * every CPT row is stochastic,
  ///   * marginal consistency: marginal(t) == marginal(t-1) * transition(t),
  ///   * every supported source of transition(t) has a row.
  Status Validate(double tol = 1e-6) const;

  /// Applies a value-id permutation to all marginals and CPTs (used by the
  /// synthetic workload generator to relabel rooms in stream snippets).
  /// `perm[old_id] = new_id`; must be a bijection over [0, state_count).
  void RelabelValues(const std::vector<ValueId>& perm);

  /// Appends all timesteps of `other` after this stream, stitching the
  /// boundary with `bridge` = CPT(first state of other | last state of
  /// this). Used to concatenate simulator snippets into long streams.
  Status Concatenate(const MarkovianStream& other, const Cpt& bridge);

  /// Total serialized footprint of all CPTs in bytes (MC-index baseline for
  /// Figure 11(b)).
  uint64_t CptBytes() const;

 private:
  StreamSchema schema_;
  std::vector<Distribution> marginals_;
  std::vector<Cpt> transitions_;  // transitions_[0] is an unused empty Cpt.
};

}  // namespace caldera

#endif  // CALDERA_MARKOV_STREAM_H_
