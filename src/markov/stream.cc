#include "markov/stream.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace caldera {

void MarkovianStream::Append(Distribution marginal, Cpt transition) {
  CALDERA_CHECK(!marginals_.empty() || transition.empty())
      << "the first timestep has no incoming transition";
  marginals_.push_back(std::move(marginal));
  transitions_.push_back(std::move(transition));
}

Status MarkovianStream::Validate(double tol) const {
  for (uint64_t t = 0; t < length(); ++t) {
    if (!marginals_[t].IsNormalized(tol)) {
      return Status::Corruption("marginal at t=" + std::to_string(t) +
                                " is not normalized (mass " +
                                std::to_string(marginals_[t].Mass()) + ")");
    }
    if (t == 0) continue;
    const Cpt& cpt = transitions_[t];
    CALDERA_RETURN_IF_ERROR(cpt.ValidateStochastic(tol));
    // Every supported source must have a row.
    for (const Distribution::Entry& e : marginals_[t - 1].entries()) {
      if (e.prob > tol && cpt.FindRow(e.value) == nullptr) {
        return Status::Corruption(
            "transition into t=" + std::to_string(t) + " lacks a row for " +
            "supported source " + std::to_string(e.value));
      }
    }
    // Consistency: marginal(t) == marginal(t-1) * transition(t).
    Distribution propagated = cpt.Propagate(marginals_[t - 1]);
    for (const Distribution::Entry& e : marginals_[t].entries()) {
      double p = propagated.ProbabilityOf(e.value);
      if (std::fabs(p - e.prob) > tol) {
        return Status::Corruption(
            "marginal inconsistency at t=" + std::to_string(t) + " value " +
            std::to_string(e.value) + ": stored " + std::to_string(e.prob) +
            " vs propagated " + std::to_string(p));
      }
    }
    for (const Distribution::Entry& e : propagated.entries()) {
      if (e.prob > tol && marginals_[t].ProbabilityOf(e.value) == 0.0) {
        return Status::Corruption(
            "propagated mass outside stored support at t=" +
            std::to_string(t) + " value " + std::to_string(e.value));
      }
    }
  }
  return Status::Ok();
}

void MarkovianStream::RelabelValues(const std::vector<ValueId>& perm) {
  CALDERA_CHECK(perm.size() == schema_.state_count());
  for (Distribution& m : marginals_) {
    std::vector<Distribution::Entry> entries;
    entries.reserve(m.support_size());
    for (const Distribution::Entry& e : m.entries()) {
      entries.push_back({perm[e.value], e.prob});
    }
    m = Distribution::FromPairs(std::move(entries));
  }
  for (Cpt& cpt : transitions_) {
    Cpt relabeled;
    for (const Cpt::Row& row : cpt.rows()) {
      std::vector<Cpt::RowEntry> entries;
      entries.reserve(row.entries.size());
      for (const Cpt::RowEntry& e : row.entries) {
        entries.push_back({perm[e.dst], e.prob});
      }
      relabeled.SetRow(perm[row.src], std::move(entries));
    }
    cpt = std::move(relabeled);
  }
}

Status MarkovianStream::Concatenate(const MarkovianStream& other,
                                    const Cpt& bridge) {
  if (other.empty()) return Status::Ok();
  if (empty()) {
    *this = other;
    return Status::Ok();
  }
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("schema mismatch in Concatenate");
  }
  // The bridge must cover our final support and land on the other stream's
  // initial support.
  for (const Distribution::Entry& e : marginals_.back().entries()) {
    if (bridge.FindRow(e.value) == nullptr) {
      return Status::InvalidArgument("bridge CPT missing row for source " +
                                     std::to_string(e.value));
    }
  }
  marginals_.push_back(other.marginals_[0]);
  transitions_.push_back(bridge);
  for (uint64_t t = 1; t < other.length(); ++t) {
    marginals_.push_back(other.marginals_[t]);
    transitions_.push_back(other.transitions_[t]);
  }
  return Status::Ok();
}

uint64_t MarkovianStream::CptBytes() const {
  uint64_t total = 0;
  for (const Cpt& cpt : transitions_) total += cpt.ByteSize();
  return total;
}

}  // namespace caldera
