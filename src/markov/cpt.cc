#include "markov/cpt.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/encoding.h"
#include "common/logging.h"
#include "markov/kernels.h"

namespace caldera {

void Cpt::SetRow(ValueId src, std::vector<RowEntry> entries) {
  csr_.reset();
  std::sort(entries.begin(), entries.end(),
            [](const RowEntry& a, const RowEntry& b) { return a.dst < b.dst; });
  // Merge duplicate destinations.
  std::vector<RowEntry> merged;
  merged.reserve(entries.size());
  for (const RowEntry& e : entries) {
    if (!merged.empty() && merged.back().dst == e.dst) {
      merged.back().prob += e.prob;
    } else {
      merged.push_back(e);
    }
  }
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), src,
      [](const Row& r, ValueId v) { return r.src < v; });
  if (it != rows_.end() && it->src == src) {
    it->entries = std::move(merged);
  } else {
    rows_.insert(it, Row{src, std::move(merged)});
  }
}

void Cpt::AppendRowSorted(ValueId src, std::vector<RowEntry> entries) {
  csr_.reset();
  CALDERA_CHECK(rows_.empty() || rows_.back().src < src)
      << "AppendRowSorted rows must arrive in ascending src order";
  rows_.push_back({src, std::move(entries)});
}

std::shared_ptr<const kernels::CsrCpt> Cpt::LoadCsr() const {
  return std::atomic_load_explicit(&csr_, std::memory_order_acquire);
}

const kernels::CsrCpt& Cpt::csr() const {
  std::shared_ptr<const kernels::CsrCpt> snap = LoadCsr();
  if (snap == nullptr) {
    auto built =
        std::make_shared<const kernels::CsrCpt>(kernels::CsrCpt::From(*this));
    std::shared_ptr<const kernels::CsrCpt> expected;
    // First store wins; a racing builder adopts the stored view so the
    // returned reference always aliases csr_ (stable until mutation).
    if (std::atomic_compare_exchange_strong(&csr_, &expected, built)) {
      snap = std::move(built);
    } else {
      snap = std::move(expected);
    }
  }
  return *snap;
}

const Cpt::Row* Cpt::FindRow(ValueId src) const {
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), src,
      [](const Row& r, ValueId v) { return r.src < v; });
  if (it != rows_.end() && it->src == src) return &*it;
  return nullptr;
}

double Cpt::Probability(ValueId src, ValueId dst) const {
  const Row* row = FindRow(src);
  if (row == nullptr) return 0.0;
  auto it = std::lower_bound(
      row->entries.begin(), row->entries.end(), dst,
      [](const RowEntry& e, ValueId v) { return e.dst < v; });
  if (it != row->entries.end() && it->dst == dst) return it->prob;
  return 0.0;
}

Distribution Cpt::Propagate(const Distribution& in) const {
  std::vector<Distribution::Entry> out;
  // Accumulate sparsely: gather contributions, then merge via FromPairs.
  // Input entries and rows are both sorted by id, so a two-pointer merge
  // finds each row in O(1) amortized instead of a per-entry binary search.
  // (The flat kernels in markov/kernels.h are the fast path; this stays the
  // allocation-free-of-scratch reference implementation.)
  auto row_it = rows_.begin();
  for (const Distribution::Entry& e : in.entries()) {
    while (row_it != rows_.end() && row_it->src < e.value) ++row_it;
    if (row_it == rows_.end()) break;
    if (row_it->src != e.value) continue;
    for (const RowEntry& t : row_it->entries) {
      out.push_back({t.dst, e.prob * t.prob});
    }
  }
  return Distribution::FromPairs(std::move(out));
}

Status Cpt::ValidateStochastic(double tol) const {
  for (const Row& row : rows_) {
    double mass = 0;
    for (const RowEntry& e : row.entries) {
      if (e.prob < 0) {
        return Status::Corruption("negative CPT entry for src " +
                                  std::to_string(row.src));
      }
      mass += e.prob;
    }
    if (std::fabs(mass - 1.0) > tol) {
      return Status::Corruption("CPT row for src " + std::to_string(row.src) +
                                " sums to " + std::to_string(mass));
    }
  }
  return Status::Ok();
}

size_t Cpt::nnz() const {
  size_t n = 0;
  for (const Row& row : rows_) n += row.entries.size();
  return n;
}

size_t Cpt::ByteSize() const {
  return 4 + rows_.size() * 8 + nnz() * 12;
}

void Cpt::AppendTo(std::string* out) const {
  PutFixed32(static_cast<uint32_t>(rows_.size()), out);
  for (const Row& row : rows_) {
    PutFixed32(row.src, out);
    PutFixed32(static_cast<uint32_t>(row.entries.size()), out);
    for (const RowEntry& e : row.entries) {
      PutFixed32(e.dst, out);
      PutDouble(e.prob, out);
    }
  }
}

Result<Cpt> Cpt::Parse(std::string_view data, size_t* offset) {
  if (*offset + 4 > data.size()) return Status::Corruption("truncated CPT");
  uint32_t num_rows = GetFixed32(data.data() + *offset);
  *offset += 4;
  // Each row needs at least 8 header bytes; reject absurd counts before
  // reserving memory for them.
  if (*offset + static_cast<uint64_t>(num_rows) * 8 > data.size()) {
    return Status::Corruption("CPT row count exceeds available bytes");
  }
  Cpt cpt;
  cpt.rows_.reserve(num_rows);
  ValueId prev_src = 0;
  for (uint32_t i = 0; i < num_rows; ++i) {
    if (*offset + 8 > data.size()) {
      return Status::Corruption("truncated CPT row header");
    }
    ValueId src = GetFixed32(data.data() + *offset);
    uint32_t count = GetFixed32(data.data() + *offset + 4);
    *offset += 8;
    if (i > 0 && src <= prev_src) {
      return Status::Corruption("CPT rows out of order");
    }
    prev_src = src;
    if (*offset + count * 12ull > data.size()) {
      return Status::Corruption("truncated CPT row entries");
    }
    Row row;
    row.src = src;
    row.entries.reserve(count);
    ValueId prev_dst = 0;
    for (uint32_t j = 0; j < count; ++j) {
      ValueId dst = GetFixed32(data.data() + *offset);
      double prob = GetDouble(data.data() + *offset + 4);
      *offset += 12;
      if (j > 0 && dst <= prev_dst) {
        return Status::Corruption("CPT row entries out of order");
      }
      prev_dst = dst;
      row.entries.push_back({dst, prob});
    }
    cpt.rows_.push_back(std::move(row));
  }
  return cpt;
}

Cpt ComposeCpts(const Cpt& first, const Cpt& second, uint32_t domain_size) {
  // Delegates to the dispatched compute kernel. The workspace (dense
  // scratch, mark bytes, staging buffers) is thread-local so repeated
  // compositions — the MC index build composes one CPT per stream timestep
  // — allocate nothing after warm-up, and no per-row re-sort of touched
  // destinations happens (the old AoS implementation sorted the touched
  // list once per source row).
  static thread_local kernels::PropagationWorkspace workspace;
  return kernels::Compose(first, second, domain_size, &workspace);
}

Cpt IdentityCpt(const std::vector<ValueId>& support) {
  Cpt out;
  for (ValueId v : support) out.SetRow(v, {{v, 1.0}});
  return out;
}

}  // namespace caldera
